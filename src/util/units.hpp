// Unit helpers so scenario code reads like the paper's parameter tables
// ("2.5 MB buffer", "250 kbps link", "300 min TTL").
#pragma once

#include <cstdint>

namespace dtn::units {

/// Bytes in a kibi/mebibyte. The ONE simulator (and the paper's tables)
/// use power-of-ten "k"/"M" for sizes; we follow that convention.
constexpr std::int64_t kilobytes(double kb) {
  return static_cast<std::int64_t>(kb * 1000.0);
}
constexpr std::int64_t megabytes(double mb) {
  return static_cast<std::int64_t>(mb * 1000.0 * 1000.0);
}

/// Link speed given in kilobits per second -> bytes per second.
constexpr double kbps(double v) { return v * 1000.0 / 8.0; }

/// Simulation time helpers (simulation time is in seconds).
constexpr double seconds(double s) { return s; }
constexpr double minutes(double m) { return m * 60.0; }
constexpr double hours(double h) { return h * 3600.0; }

}  // namespace dtn::units
