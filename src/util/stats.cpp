#include "src/util/stats.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace dtn {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::ci95_half_width() const {
  if (n_ < 2) return 0.0;
  return 1.959964 * stddev() / std::sqrt(static_cast<double>(n_));
}

StatSummary summarize(const RunningStats& s) {
  StatSummary out;
  out.count = s.count();
  out.mean = s.mean();
  out.stddev = s.stddev();
  out.min = s.min();
  out.max = s.max();
  out.ci95 = s.ci95_half_width();
  return out;
}

double quantile(std::vector<double> samples, double q) {
  DTN_REQUIRE(!samples.empty(), "quantile: empty sample set");
  DTN_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q out of [0,1]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double pos = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace dtn
