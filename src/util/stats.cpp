#include "src/util/stats.hpp"

#include <algorithm>

#include "src/util/error.hpp"

namespace dtn {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::ci95_half_width() const {
  if (n_ < 2) return 0.0;
  return 1.959964 * stddev() / std::sqrt(static_cast<double>(n_));
}

void MergeStats::add(double x) {
  DTN_REQUIRE(std::isfinite(x), "MergeStats::add: non-finite sample");
  DTN_REQUIRE(std::abs(x) <= kMaxAbs, "MergeStats::add: sample out of range");
  const std::int64_t q = std::llround(x * kScale);
  if (n_ == 0) {
    min_q_ = q;
    max_q_ = q;
  } else {
    min_q_ = std::min(min_q_, q);
    max_q_ = std::max(max_q_, q);
  }
  ++n_;
  sum_q_ += static_cast<i128>(q);
  sumsq_q_ += static_cast<i128>(q) * static_cast<i128>(q);
}

void MergeStats::merge(const MergeStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  min_q_ = std::min(min_q_, other.min_q_);
  max_q_ = std::max(max_q_, other.max_q_);
  n_ += other.n_;
  sum_q_ += other.sum_q_;
  sumsq_q_ += other.sumsq_q_;
}

double MergeStats::mean() const {
  if (n_ == 0) return 0.0;
  return static_cast<double>(sum_q_) / (static_cast<double>(n_) * kScale);
}

double MergeStats::variance() const {
  if (n_ < 2) return 0.0;
  // (sumsq - sum^2/n) / (n-1), evaluated in doubles; the conversion from
  // the exact integer sums is a pure function of the accumulator state,
  // so equal states always report equal variances.
  const double n = static_cast<double>(n_);
  const double s = static_cast<double>(sum_q_);
  const double ss = static_cast<double>(sumsq_q_);
  const double var_q = (ss - s * s / n) / (n - 1.0);
  return std::max(0.0, var_q) / (kScale * kScale);
}

double MergeStats::min() const {
  return n_ ? static_cast<double>(min_q_) / kScale : 0.0;
}

double MergeStats::max() const {
  return n_ ? static_cast<double>(max_q_) / kScale : 0.0;
}

double MergeStats::sum() const { return static_cast<double>(sum_q_) / kScale; }

double MergeStats::ci95_half_width() const {
  if (n_ < 2) return 0.0;
  return 1.959964 * stddev() / std::sqrt(static_cast<double>(n_));
}

MergeStats::State MergeStats::export_state() const {
  State s;
  s.n = n_;
  s.min_q = min_q_;
  s.max_q = max_q_;
  s.sum_lo = static_cast<std::uint64_t>(sum_q_);
  s.sum_hi = static_cast<std::int64_t>(sum_q_ >> 64);
  s.sumsq_lo = static_cast<std::uint64_t>(sumsq_q_);
  s.sumsq_hi = static_cast<std::int64_t>(sumsq_q_ >> 64);
  return s;
}

void MergeStats::import_state(const State& s) {
  n_ = s.n;
  min_q_ = s.min_q;
  max_q_ = s.max_q;
  sum_q_ = (static_cast<i128>(s.sum_hi) << 64) |
           static_cast<i128>(s.sum_lo);
  sumsq_q_ = (static_cast<i128>(s.sumsq_hi) << 64) |
             static_cast<i128>(s.sumsq_lo);
}

StatSummary summarize(const RunningStats& s) {
  StatSummary out;
  out.count = s.count();
  out.mean = s.mean();
  out.stddev = s.stddev();
  out.min = s.min();
  out.max = s.max();
  out.ci95 = s.ci95_half_width();
  return out;
}

double quantile(std::vector<double> samples, double q) {
  DTN_REQUIRE(!samples.empty(), "quantile: empty sample set");
  DTN_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q out of [0,1]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double pos = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace dtn
