// ONE-style "key = value" settings text, used to describe scenarios.
//
// Grammar (a friendly subset of the ONE simulator's settings files):
//   # comment until end of line
//   key = value          (value is trimmed; keys may be dotted: Group.size)
// Later assignments override earlier ones.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dtn {

class Settings {
 public:
  Settings() = default;

  /// Parses settings text. Throws PreconditionError on malformed lines.
  static Settings parse(const std::string& text);

  /// Loads and parses a file. Throws on I/O failure or parse error.
  static Settings load(const std::string& path);

  void set(const std::string& key, const std::string& value);

  bool has(const std::string& key) const;

  /// Accessors throw PreconditionError if the key is missing or malformed.
  std::string get_string(const std::string& key) const;
  double get_double(const std::string& key) const;
  std::int64_t get_int(const std::string& key) const;
  bool get_bool(const std::string& key) const;

  /// Defaulted accessors.
  std::string get_string_or(const std::string& key, std::string dflt) const;
  double get_double_or(const std::string& key, double dflt) const;
  std::int64_t get_int_or(const std::string& key, std::int64_t dflt) const;
  bool get_bool_or(const std::string& key, bool dflt) const;

  /// Comma-separated list of doubles, e.g. "2,2.5,3".
  std::vector<double> get_double_list(const std::string& key) const;

  /// All keys, sorted (for round-tripping / debugging).
  std::vector<std::string> keys() const;

  /// Serializes back to "key = value" lines (sorted by key).
  std::string to_text() const;

 private:
  std::map<std::string, std::string> values_;
};

/// Trims ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// Splits on a delimiter, trimming each piece; empty pieces are kept.
std::vector<std::string> split(const std::string& s, char delim);

}  // namespace dtn
