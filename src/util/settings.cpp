#include "src/util/settings.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/util/error.hpp"

namespace dtn {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string piece;
  std::istringstream is(s);
  while (std::getline(is, piece, delim)) out.push_back(trim(piece));
  if (!s.empty() && s.back() == delim) out.push_back("");
  return out;
}

Settings Settings::parse(const std::string& text) {
  Settings s;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    DTN_REQUIRE(eq != std::string::npos,
                "settings line " + std::to_string(lineno) + ": missing '='");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    DTN_REQUIRE(!key.empty(),
                "settings line " + std::to_string(lineno) + ": empty key");
    s.values_[key] = value;
  }
  return s;
}

Settings Settings::load(const std::string& path) {
  std::ifstream f(path);
  DTN_REQUIRE(static_cast<bool>(f), "cannot open settings file: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse(buf.str());
}

void Settings::set(const std::string& key, const std::string& value) {
  values_[trim(key)] = trim(value);
}

bool Settings::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Settings::get_string(const std::string& key) const {
  const auto it = values_.find(key);
  DTN_REQUIRE(it != values_.end(), "missing settings key: " + key);
  return it->second;
}

double Settings::get_double(const std::string& key) const {
  const std::string v = get_string(key);
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  const bool ok = end != v.c_str() && trim(std::string(end)).empty();
  DTN_REQUIRE(ok, "settings key '" + key + "' is not a number: " + v);
  return d;
}

std::int64_t Settings::get_int(const std::string& key) const {
  const std::string v = get_string(key);
  char* end = nullptr;
  const long long i = std::strtoll(v.c_str(), &end, 10);
  const bool ok = end != v.c_str() && trim(std::string(end)).empty();
  DTN_REQUIRE(ok, "settings key '" + key + "' is not an integer: " + v);
  return static_cast<std::int64_t>(i);
}

bool Settings::get_bool(const std::string& key) const {
  std::string v = get_string(key);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  DTN_REQUIRE(false, "settings key '" + key + "' is not a boolean: " + v);
  return false;
}

std::string Settings::get_string_or(const std::string& key,
                                    std::string dflt) const {
  return has(key) ? get_string(key) : std::move(dflt);
}
double Settings::get_double_or(const std::string& key, double dflt) const {
  return has(key) ? get_double(key) : dflt;
}
std::int64_t Settings::get_int_or(const std::string& key,
                                  std::int64_t dflt) const {
  return has(key) ? get_int(key) : dflt;
}
bool Settings::get_bool_or(const std::string& key, bool dflt) const {
  return has(key) ? get_bool(key) : dflt;
}

std::vector<double> Settings::get_double_list(const std::string& key) const {
  std::vector<double> out;
  for (const auto& piece : split(get_string(key), ',')) {
    if (piece.empty()) continue;
    char* end = nullptr;
    const double d = std::strtod(piece.c_str(), &end);
    DTN_REQUIRE(end != piece.c_str(),
                "settings key '" + key + "': bad list element '" + piece + "'");
    out.push_back(d);
  }
  return out;
}

std::vector<std::string> Settings::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

std::string Settings::to_text() const {
  std::ostringstream os;
  for (const auto& [k, v] : values_) os << k << " = " << v << '\n';
  return os.str();
}

}  // namespace dtn
