// Streaming statistics used by every metric collector in the simulator.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace dtn {

/// RunningStats: Welford's online mean/variance with min/max tracking.
/// Numerically stable; O(1) per sample, O(1) memory.
class RunningStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  /// Half-width of the ~95% normal confidence interval of the mean.
  double ci95_half_width() const;

  /// Raw accumulator state for snapshot/restore. Exported values are
  /// reimported verbatim (including the ±inf min/max of an empty
  /// accumulator), so a restored accumulator continues bit-identically.
  struct State {
    std::size_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  State export_state() const { return {n_, mean_, m2_, min_, max_}; }
  void import_state(const State& s) {
    n_ = s.n;
    mean_ = s.mean;
    m2_ = s.m2;
    min_ = s.min;
    max_ = s.max;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// MergeStats: exactly-mergeable moment accumulator for sweep aggregation.
/// Samples are quantized to a fixed-point grid (1/kScale resolution) and
/// accumulated in 128-bit integers, so add() and merge() are exactly
/// associative *and* commutative: any partition of a sample set into
/// shards, merged in any order, reproduces the bit-identical accumulator
/// state of sequential accumulation. That exactness is what lets the sweep
/// orchestrator promise byte-identical aggregate files across any worker
/// count, interleaving, or crash/re-lease pattern (DESIGN.md §12). The
/// price is ~1e-6 absolute rounding per sample — far below simulation
/// noise on every metric we aggregate.
class MergeStats {
 public:
  /// Fixed-point scale: 2^20 units per 1.0.
  static constexpr double kScale = 1048576.0;
  /// Largest |x| that add() accepts (quantized value must fit an i64 and
  /// its square must leave headroom for ~2^40 samples in the i128 sums).
  static constexpr double kMaxAbs = 1.0e12;

  void add(double x);
  void merge(const MergeStats& other);

  std::size_t count() const { return static_cast<std::size_t>(n_); }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const { return std::sqrt(variance()); }
  double min() const;
  double max() const;
  double sum() const;
  /// Half-width of the ~95% normal confidence interval of the mean.
  double ci95_half_width() const;

  /// Raw accumulator words for serialization; reimported verbatim, so a
  /// round-tripped accumulator continues (and compares) bit-identically.
  /// The 128-bit sums travel as {lo, hi} two's-complement halves.
  struct State {
    std::uint64_t n = 0;
    std::int64_t min_q = 0;
    std::int64_t max_q = 0;
    std::uint64_t sum_lo = 0;
    std::int64_t sum_hi = 0;
    std::uint64_t sumsq_lo = 0;
    std::int64_t sumsq_hi = 0;
  };
  State export_state() const;
  void import_state(const State& s);

  friend bool operator==(const MergeStats&, const MergeStats&) = default;

 private:
  __extension__ typedef __int128 i128;

  std::uint64_t n_ = 0;
  std::int64_t min_q_ = 0;  ///< valid only when n_ > 0
  std::int64_t max_q_ = 0;
  i128 sum_q_ = 0;
  i128 sumsq_q_ = 0;
};

/// Summary of a finished sample set (for report rows).
struct StatSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double ci95 = 0.0;
};

StatSummary summarize(const RunningStats& s);

/// Quantile of a sample vector (sorts a copy; q in [0,1], linear interp).
double quantile(std::vector<double> samples, double q);

}  // namespace dtn
