#include "src/util/task_graph.hpp"

#include "src/util/error.hpp"

namespace dtn {
namespace {

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

// Helpers spin this many pauses on the epoch before parking on the
// condition variable. Long enough to catch back-to-back step
// dispatches, short enough not to burn a core when the simulation is
// between runs.
constexpr int kSpinIters = 2048;

// Idle sweeps inside drain() before yielding the core: covers the
// window where every ready chunk is claimed but not yet complete.
constexpr int kDrainYieldEvery = 256;

}  // namespace

int TaskGraph::add(TaskKernel fn, std::size_t grain,
                   std::initializer_list<int> deps) {
  DTN_REQUIRE(grain >= 1, "TaskGraph: grain must be >= 1");
  const int id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  Node& nd = nodes_.back();
  nd.fn = std::move(fn);
  nd.grain = grain;
  for (int d : deps) {
    DTN_REQUIRE(d >= 0 && d < id, "TaskGraph: dependency must precede node");
    nodes_[static_cast<std::size_t>(d)].successors.push_back(id);
    ++nd.dep_count;
  }
  return id;
}

int TaskGraph::add_serial(TaskKernel fn, std::initializer_list<int> deps) {
  const int id = add(std::move(fn), /*grain=*/1, deps);
  nodes_[static_cast<std::size_t>(id)].items = 1;
  return id;
}

void TaskGraph::set_items(int id, std::size_t items) {
  Node& nd = nodes_[static_cast<std::size_t>(id)];
  nd.items = items;
  // Keep chunk_count coherent so a *predecessor* node may size this one
  // mid-run: the write happens before the predecessor's finish_node
  // releases the final dependency (acq_rel), so every lane that claims a
  // chunk — or the finisher that completes a zero-chunk node — observes
  // it. Only legal from code that runs strictly before this node is
  // readied (a dependency's kernel, or between runs).
  nd.chunk_count = items == 0 ? 0 : (items + nd.grain - 1) / nd.grain;
}

TaskExecutor::TaskExecutor(std::size_t lanes) {
  const std::size_t helpers = lanes > 1 ? lanes - 1 : 0;
  workers_.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  flat_id_ = flat_.add(TaskKernel{}, /*grain=*/1);
}

TaskExecutor::~TaskExecutor() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void TaskExecutor::prepare(TaskGraph& g) {
  // Reset every per-run counter *before* the graph is published via
  // active_ (release store) so any helper that observes the graph
  // sees fully initialized state.
  nodes_remaining_.store(g.nodes_.size(), std::memory_order_relaxed);
  for (TaskGraph::Node& nd : g.nodes_) {
    nd.chunk_count = nd.items == 0 ? 0 : (nd.items + nd.grain - 1) / nd.grain;
    nd.deps_remaining.store(nd.dep_count, std::memory_order_relaxed);
    nd.next_chunk.store(0, std::memory_order_relaxed);
    nd.chunks_done.store(0, std::memory_order_relaxed);
  }
  // Zero-chunk roots complete immediately (single-threaded, before
  // publish); finish_node cascades through any zero-chunk successors.
  for (std::size_t i = 0; i < g.nodes_.size(); ++i) {
    TaskGraph::Node& nd = g.nodes_[i];
    if (nd.dep_count == 0 && nd.chunk_count == 0)
      finish_node(g, static_cast<int>(i));
  }
}

void TaskExecutor::run(TaskGraph& g) {
  failed_.store(false, std::memory_order_relaxed);
  err_ = nullptr;  // no run in flight: safe without the error mutex
  prepare(g);
  if (workers_.empty()) {
    // Inline fast path: the caller sweeps the graph alone. drain()
    // visits nodes in id order, so execution is a deterministic
    // topological order.
    drain(g);
    if (failed_.load(std::memory_order_relaxed)) std::rethrow_exception(err_);
    return;
  }
  active_.store(&g, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  {
    // Pairs with the predicate check in worker_loop: a helper between
    // "predicate false" and "wait" holds the mutex, so taking it here
    // guarantees the notify below cannot be lost.
    std::lock_guard<std::mutex> lk(mutex_);
  }
  cv_.notify_all();
  drain(g);
  active_.store(nullptr, std::memory_order_release);
  // Late wakers that never saw this graph load nullptr and go back to
  // sleep; anyone who did see it is counted in in_flight_. Waiting for
  // zero makes it safe to prepare() the next run (or destroy graphs).
  while (in_flight_.load(std::memory_order_acquire) != 0) cpu_pause();
  if (failed_.load(std::memory_order_relaxed)) std::rethrow_exception(err_);
}

void TaskExecutor::for_each(std::size_t n, std::size_t grain,
                            const TaskKernel& fn) {
  DTN_REQUIRE(grain >= 1, "TaskExecutor: grain must be >= 1");
  if (n == 0) return;
  if (workers_.empty() || n <= grain) {
    fn(0, n);  // exceptions propagate naturally
    return;
  }
  TaskGraph::Node& nd = flat_.nodes_[static_cast<std::size_t>(flat_id_)];
  nd.ext = &fn;  // borrow — the caller's kernel is never copied
  nd.items = n;
  nd.grain = grain;
  try {
    run(flat_);
  } catch (...) {
    nd.ext = nullptr;
    throw;
  }
  nd.ext = nullptr;
}

void TaskExecutor::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t e = epoch_.load(std::memory_order_acquire);
    for (int spin = 0; spin < kSpinIters && e == seen; ++spin) {
      if (stop_.load(std::memory_order_relaxed)) return;
      cpu_pause();
      e = epoch_.load(std::memory_order_acquire);
    }
    if (e == seen) {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_.wait(lk, [&] {
        return stop_.load(std::memory_order_relaxed) ||
               epoch_.load(std::memory_order_acquire) != seen;
      });
    }
    if (stop_.load(std::memory_order_relaxed)) return;
    seen = epoch_.load(std::memory_order_acquire);
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    TaskGraph* g = active_.load(std::memory_order_acquire);
    if (g != nullptr) drain(*g);
    in_flight_.fetch_sub(1, std::memory_order_release);
  }
}

void TaskExecutor::drain(TaskGraph& g) {
  int idle = 0;
  while (nodes_remaining_.load(std::memory_order_acquire) != 0 &&
         !failed_.load(std::memory_order_relaxed)) {
    bool did_work = false;
    for (std::size_t i = 0; i < g.nodes_.size(); ++i) {
      TaskGraph::Node& nd = g.nodes_[i];
      if (nd.deps_remaining.load(std::memory_order_acquire) != 0) continue;
      if (nd.next_chunk.load(std::memory_order_relaxed) >= nd.chunk_count)
        continue;
      for (;;) {
        const std::size_t c =
            nd.next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (c >= nd.chunk_count) break;
        did_work = true;
        run_chunk(g, static_cast<int>(i), c);
        if (failed_.load(std::memory_order_relaxed)) return;
      }
    }
    if (!did_work) {
      if (++idle >= kDrainYieldEvery) {
        idle = 0;
        std::this_thread::yield();
      } else {
        cpu_pause();
      }
    } else {
      idle = 0;
    }
  }
}

void TaskExecutor::run_chunk(TaskGraph& g, int id, std::size_t chunk) {
  TaskGraph::Node& nd = g.nodes_[static_cast<std::size_t>(id)];
  const std::size_t begin = chunk * nd.grain;
  const std::size_t end = std::min(nd.items, begin + nd.grain);
  const TaskKernel& fn = nd.ext != nullptr ? *nd.ext : nd.fn;
  try {
    fn(begin, end);
  } catch (...) {
    capture_exception();
    return;  // abandon the run; counters are reset by the next prepare()
  }
  // acq_rel chain: the final increment synchronizes with every prior
  // chunk's increment, so finish_node observes all chunk writes.
  const std::size_t done =
      nd.chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (done == nd.chunk_count) finish_node(g, id);
}

void TaskExecutor::finish_node(TaskGraph& g, int id) {
  TaskGraph::Node& nd = g.nodes_[static_cast<std::size_t>(id)];
  for (int s : nd.successors) {
    TaskGraph::Node& sn = g.nodes_[static_cast<std::size_t>(s)];
    // acq_rel: the claimer of the successor's first chunk acquires all
    // predecessor writes through this decrement chain.
    if (sn.deps_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        sn.chunk_count == 0) {
      finish_node(g, s);  // zero-chunk node: whoever readies it, finishes it
    }
  }
  nodes_remaining_.fetch_sub(1, std::memory_order_release);
}

void TaskExecutor::capture_exception() {
  bool expected = false;
  if (failed_.compare_exchange_strong(expected, true,
                                      std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lk(err_mutex_);
    err_ = std::current_exception();
  }
}

}  // namespace dtn
