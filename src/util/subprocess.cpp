#include "src/util/subprocess.hpp"

#include <cerrno>
#include <csignal>
#include <utility>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/util/error.hpp"

namespace dtn {

ChildProcess::~ChildProcess() { close_fds(); }

ChildProcess::ChildProcess(ChildProcess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      stdin_fd_(std::exchange(other.stdin_fd_, -1)),
      stdout_fd_(std::exchange(other.stdout_fd_, -1)) {}

ChildProcess& ChildProcess::operator=(ChildProcess&& other) noexcept {
  if (this != &other) {
    close_fds();
    pid_ = std::exchange(other.pid_, -1);
    stdin_fd_ = std::exchange(other.stdin_fd_, -1);
    stdout_fd_ = std::exchange(other.stdout_fd_, -1);
  }
  return *this;
}

void ChildProcess::close_fds() {
  if (stdin_fd_ >= 0) ::close(stdin_fd_);
  if (stdout_fd_ >= 0) ::close(stdout_fd_);
  stdin_fd_ = -1;
  stdout_fd_ = -1;
}

ChildProcess ChildProcess::spawn(const std::vector<std::string>& argv) {
  DTN_REQUIRE(!argv.empty(), "ChildProcess::spawn: empty argv");
  int in_pipe[2] = {-1, -1};   // parent writes -> child stdin
  int out_pipe[2] = {-1, -1};  // child stdout -> parent reads
  DTN_REQUIRE(::pipe(in_pipe) == 0, "ChildProcess::spawn: pipe failed");
  if (::pipe(out_pipe) != 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    DTN_REQUIRE(false, "ChildProcess::spawn: pipe failed");
  }

  const int pid = ::fork();
  if (pid < 0) {
    for (int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]})
      ::close(fd);
    DTN_REQUIRE(false, "ChildProcess::spawn: fork failed");
  }

  if (pid == 0) {
    // Child: wire the pipes to stdin/stdout and exec.
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    for (int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]})
      ::close(fd);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv)
      cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    // exec failed: exit hard without running parent-owned destructors.
    ::_exit(127);
  }

  ChildProcess p;
  p.pid_ = pid;
  p.stdin_fd_ = in_pipe[1];
  p.stdout_fd_ = out_pipe[0];
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  // The coordinator multiplexes many children; its reads must not block.
  const int flags = ::fcntl(p.stdout_fd_, F_GETFL, 0);
  ::fcntl(p.stdout_fd_, F_SETFL, flags | O_NONBLOCK);
  return p;
}

bool ChildProcess::write_line(const std::string& line) {
  if (stdin_fd_ < 0) return false;
  std::string out = line;
  out.push_back('\n');
  std::size_t off = 0;
  while (off < out.size()) {
    // MSG_NOSIGNAL is socket-only; suppress SIGPIPE process-wide instead
    // (the orchestrator ignores it — see Coordinator) and report EPIPE.
    const ::ssize_t n = ::write(stdin_fd_, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void ChildProcess::close_stdin() {
  if (stdin_fd_ >= 0) ::close(stdin_fd_);
  stdin_fd_ = -1;
}

void ChildProcess::kill(int sig) {
  if (pid_ > 0) ::kill(pid_, sig);
}

bool ChildProcess::try_wait(int* exit_code) {
  if (pid_ <= 0) return true;
  int status = 0;
  const int r = ::waitpid(pid_, &status, WNOHANG);
  if (r == 0) return false;
  pid_ = -1;
  if (exit_code != nullptr) {
    *exit_code = WIFEXITED(status) ? WEXITSTATUS(status)
                                   : -(WIFSIGNALED(status) ? WTERMSIG(status)
                                                           : 1);
  }
  return true;
}

int ChildProcess::wait() {
  if (pid_ <= 0) return -1;
  int status = 0;
  while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
  }
  pid_ = -1;
  return WIFEXITED(status)
             ? WEXITSTATUS(status)
             : -(WIFSIGNALED(status) ? WTERMSIG(status) : 1);
}

std::vector<std::string> LineBuffer::feed(const char* data, std::size_t n) {
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < n; ++i) {
    const char c = data[i];
    if (c == '\n') {
      lines.push_back(std::move(partial_));
      partial_.clear();
    } else if (c != '\r') {
      partial_.push_back(c);
    }
  }
  return lines;
}

int read_available(int fd, char* buf, std::size_t cap) {
  while (true) {
    const ::ssize_t n = ::read(fd, buf, cap);
    if (n >= 0) return static_cast<int>(n);
    if (errno == EINTR) continue;
    return -1;  // EAGAIN/EWOULDBLOCK or hard error: nothing available now
  }
}

}  // namespace dtn
