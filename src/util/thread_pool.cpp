#include "src/util/thread_pool.hpp"

#include <algorithm>

namespace dtn {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void parallel_for_index(ThreadPool& pool, std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
  parallel_for_index(pool, n, /*grain=*/1, fn);
}

void parallel_for_index(ThreadPool& pool, std::size_t n, std::size_t grain,
                        const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (pool.size() <= 1 || n <= grain) {
    // Fast path: nothing to gain from the queue — run inline.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunks = (n + grain - 1) / grain;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(n, begin + grain);
    futures.push_back(pool.submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dtn
