#include "src/util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/util/error.hpp"

namespace dtn {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  DTN_REQUIRE(!columns_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<Cell> row) {
  DTN_REQUIRE(row.size() == columns_.size(), "Table: row width mismatch");
  rows_.push_back(std::move(row));
}

void Table::set_precision(int digits) {
  DTN_REQUIRE(digits >= 0 && digits <= 17, "Table: bad precision");
  precision_ = digits;
}

std::string Table::format_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  std::ostringstream os;
  if (const auto* d = std::get_if<double>(&c)) {
    os << std::fixed << std::setprecision(precision_) << *d;
  } else {
    os << std::get<std::int64_t>(c);
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], r.back().size());
    }
    cells.push_back(std::move(r));
  }
  auto line = [&] {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  line();
  os << '|';
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
       << columns_[c] << " |";
  }
  os << '\n';
  line();
  for (const auto& r : cells) {
    os << '|';
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << ' ' << std::right << std::setw(static_cast<int>(widths[c])) << r[c]
         << " |";
    }
    os << '\n';
  }
  line();
}

void Table::write_csv(std::ostream& os) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ',';
    os << escape(columns_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << escape(format_cell(row[c]));
    }
    os << '\n';
  }
}

bool Table::save_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_csv(f);
  return static_cast<bool>(f);
}

}  // namespace dtn
