#pragma once
/// \file task_graph.hpp
/// Persistent-worker task-graph executor for intra-step parallelism.
///
/// Motivation (DESIGN.md §16): the original `parallel_for_index` path
/// forks and joins the thread pool at every phase boundary of every
/// simulation step, paying a packaged_task + future + std::function
/// heap allocation per chunk and a condition-variable round trip per
/// phase. At step rates of 10^4..10^6/s the barrier overhead dominates
/// and parallel runs measure *slower* than serial. This executor keeps
/// a fixed set of workers parked on one epoch counter; dispatching a
/// whole step's task graph is a single atomic bump + notify, chunks
/// are claimed from preallocated per-node atomic cursors (zero
/// steady-state allocations), and a worker finishing one node's chunks
/// immediately pulls the next *ready* node instead of joining a
/// barrier.
///
/// Determinism contract: the executor never decides *what* work runs,
/// only *when*. Nodes declare dependencies; kernels must write
/// disjoint, index-addressed outputs. All cross-phase reductions and
/// merges are performed inside single-chunk (serial) nodes in a
/// canonical order, so simulation results are bit-identical at any
/// lane count — the same contract the fork-join path upheld.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace dtn {

/// A range kernel: process items [begin, end). Serial nodes receive
/// (0, 1) and may ignore the arguments.
using TaskKernel = std::function<void(std::size_t begin, std::size_t end)>;

/// A reusable dependency graph of range kernels. Build once (node
/// kernels may capture `this` of the owning system), then re-run every
/// step via TaskExecutor::run after refreshing per-run item counts
/// with set_items. Adding nodes allocates; running does not.
class TaskGraph {
 public:
  /// Adds a node. `grain` is the max chunk width handed to one worker
  /// at a time; `deps` are node ids returned by earlier add() calls.
  /// Returns the node id. Item count defaults to 0 (node is a no-op
  /// until set_items is called; dependency edges still fire).
  int add(TaskKernel fn, std::size_t grain,
          std::initializer_list<int> deps = {});

  /// Convenience for a serial node: one chunk, kernel sees (0, 1).
  int add_serial(TaskKernel fn, std::initializer_list<int> deps = {});

  /// Sets the item count for the next run. A count of 0 skips the
  /// kernel entirely (the node still completes and releases its
  /// successors). May also be called *during* a run from a kernel of
  /// one of this node's dependencies — the count becomes visible when
  /// that dependency completes — which lets a serial planning node size
  /// the parallel stage it feeds.
  void set_items(int id, std::size_t items);

  std::size_t size() const { return nodes_.size(); }

 private:
  friend class TaskExecutor;

  struct Node {
    TaskKernel fn;                   ///< set at build time; never re-bound
    const TaskKernel* ext = nullptr; ///< borrowed kernel (for_each fast path)
    std::vector<int> successors;
    int dep_count = 0;               ///< static in-degree
    std::size_t items = 0;
    std::size_t grain = 1;
    // Per-run state, reset by TaskExecutor::prepare before publishing.
    std::size_t chunk_count = 0;
    std::atomic<int> deps_remaining{0};
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<std::size_t> chunks_done{0};
  };

  // deque: Node holds atomics (immovable); ids stay stable as the
  // graph grows.
  std::deque<Node> nodes_;
};

/// Executes TaskGraphs on `lanes` total execution lanes *including the
/// calling thread*: lanes <= 1 spawns no threads and runs everything
/// inline on the caller (the single-worker fast path), lanes == k
/// parks k-1 persistent helpers. Dispatch is epoch-counted: helpers
/// spin briefly on the epoch atomic, then block on one condition
/// variable; a run() is one epoch bump + notify_all, with no thread
/// spawn/join and no per-phase condvar churn.
class TaskExecutor {
 public:
  explicit TaskExecutor(std::size_t lanes);
  ~TaskExecutor();

  TaskExecutor(const TaskExecutor&) = delete;
  TaskExecutor& operator=(const TaskExecutor&) = delete;

  /// Total lanes including the caller (>= 1).
  std::size_t lanes() const { return workers_.size() + 1; }

  /// Runs the graph to completion; the caller participates. The first
  /// exception thrown by any kernel is rethrown here (remaining work
  /// is abandoned; the graph is safely reusable afterwards).
  void run(TaskGraph& g);

  /// Flat parallel-for over [0, n) with the given grain. The kernel
  /// is *borrowed*, never copied — no allocation on the hot path.
  /// Replaces the chunked parallel_for_index for in-step phases.
  void for_each(std::size_t n, std::size_t grain, const TaskKernel& fn);

 private:
  void worker_loop();
  void prepare(TaskGraph& g);
  void drain(TaskGraph& g);
  void run_chunk(TaskGraph& g, int id, std::size_t chunk);
  void finish_node(TaskGraph& g, int id);
  void capture_exception();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<TaskGraph*> active_{nullptr};
  std::atomic<int> in_flight_{0};
  std::atomic<std::size_t> nodes_remaining_{0};
  std::atomic<bool> failed_{false};
  std::atomic<bool> stop_{false};
  std::mutex err_mutex_;
  std::exception_ptr err_;

  TaskGraph flat_;      ///< single-node graph backing for_each
  int flat_id_ = -1;
};

}  // namespace dtn
