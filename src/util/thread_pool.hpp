// Fixed-size thread pool used to fan parameter-sweep points out over cores.
//
// Each sweep point is an independent simulation with its own RNG stream, so
// parallel and serial execution produce bit-identical results; the pool only
// changes wall-clock time.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dtn {

class ThreadPool {
 public:
  /// Creates `threads` workers (0 -> hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future reports its result/exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs fn(i) for i in [0, n) on a pool, blocking until all complete.
/// Exceptions from tasks are rethrown (first one wins).
void parallel_for_index(ThreadPool& pool, std::size_t n,
                        const std::function<void(std::size_t)>& fn);

/// Chunked variant for hot paths: indices are grouped into contiguous
/// chunks of `grain`, one pool task per chunk, so per-index std::function
/// and future allocation is amortized. When the whole range fits in one
/// chunk or the pool has a single worker the loop runs inline on the
/// caller — a no-op fast path with zero queue traffic. fn must tolerate
/// concurrent invocation for indices in *different* chunks; indices
/// within a chunk run in ascending order.
void parallel_for_index(ThreadPool& pool, std::size_t n, std::size_t grain,
                        const std::function<void(std::size_t)>& fn);

}  // namespace dtn
