// Result-table formatting shared by benches, examples and reports.
//
// A Table collects named columns and prints either an aligned console view
// (what the bench binaries emit so the paper's figure series are readable)
// or CSV (for plotting).
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace dtn {

/// One cell: string or number (numbers are formatted with fixed precision).
using Cell = std::variant<std::string, double, std::int64_t>;

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Appends a row; must have exactly as many cells as there are columns.
  void add_row(std::vector<Cell> row);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return columns_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<Cell>& row(std::size_t i) const { return rows_.at(i); }

  /// Number of fraction digits used when formatting doubles (default 4).
  void set_precision(int digits);

  /// Writes an aligned, human-readable table.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (no quoting of embedded commas needed here,
  /// but quotes are added when a string cell contains ',' or '"').
  void write_csv(std::ostream& os) const;

  /// Convenience: write_csv to a file path. Returns false on I/O failure.
  bool save_csv(const std::string& path) const;

 private:
  std::string format_cell(const Cell& c) const;

  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace dtn
