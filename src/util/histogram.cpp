#include "src/util/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace dtn {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  DTN_REQUIRE(hi > lo, "Histogram: hi must exceed lo");
  DTN_REQUIRE(bins > 0, "Histogram: need at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

void Histogram::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) /
         (static_cast<double>(total_) * width_);
}

std::vector<double> Histogram::ccdf() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  // Count of samples >= left edge of each bin (overflow included).
  std::size_t above = overflow_;
  for (std::size_t i = counts_.size(); i-- > 0;) {
    above += counts_[i];
    out[i] = static_cast<double>(above) / static_cast<double>(total_);
  }
  return out;
}

void Histogram::add_count(std::size_t bin, std::size_t count) {
  counts_.at(bin) += count;
  total_ += count;
}

void Histogram::add_underflow(std::size_t count) {
  underflow_ += count;
  total_ += count;
}

void Histogram::add_overflow(std::size_t count) {
  overflow_ += count;
  total_ += count;
}

void Histogram::merge(const Histogram& other) {
  DTN_REQUIRE(lo_ == other.lo_ && hi_ == other.hi_ &&
                  counts_.size() == other.counts_.size(),
              "Histogram::merge: binning mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::quantile(double q) const {
  return quantile_checked(q).value;
}

Histogram::QuantileEstimate Histogram::quantile_checked(double q) const {
  DTN_REQUIRE(q >= 0.0 && q <= 1.0, "Histogram::quantile: q out of [0,1]");
  if (total_ == 0) return {lo_, false};
  const double rank = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (rank <= cum) return {lo_, false};
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = static_cast<double>(counts_[i]);
    if (c > 0.0 && rank <= cum + c) {
      const double frac = (rank - cum) / c;
      return {lo_ + (static_cast<double>(i) + frac) * width_, false};
    }
    cum += c;
  }
  // The rank lands in the overflow mass: hi is a lower bound on the true
  // quantile, not an estimate.
  return {hi_, overflow_ > 0};
}

double Histogram::overflow_fraction() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(overflow_) / static_cast<double>(total_);
}

double Histogram::underflow_fraction() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(underflow_) / static_cast<double>(total_);
}

ExponentialFit fit_exponential(const std::vector<double>& samples,
                               std::size_t ccdf_points) {
  ExponentialFit fit;
  fit.samples = samples.size();
  if (samples.empty()) return fit;

  double sum = 0.0;
  double maxv = 0.0;
  for (double s : samples) {
    DTN_REQUIRE(s >= 0.0, "fit_exponential: negative sample");
    sum += s;
    maxv = std::max(maxv, s);
  }
  fit.mean = sum / static_cast<double>(samples.size());
  if (fit.mean <= 0.0) return fit;
  fit.lambda = 1.0 / fit.mean;

  // R^2 of log CCDF vs t: build the empirical CCDF from sorted samples at
  // `ccdf_points` evenly spaced abscissae, regress log(ccdf) on t.
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> xs, ys;
  xs.reserve(ccdf_points);
  ys.reserve(ccdf_points);
  for (std::size_t i = 0; i < ccdf_points; ++i) {
    const double t = maxv * static_cast<double>(i) /
                     static_cast<double>(ccdf_points);
    const auto it = std::lower_bound(sorted.begin(), sorted.end(), t);
    const auto above = static_cast<std::size_t>(sorted.end() - it);
    // Empty-tail grid point: CCDF is 0 there and log(0) is undefined, so
    // the point carries no regression information — skip it. (The CCDF is
    // non-increasing, so these can only trail; skipping rather than
    // breaking also stays correct if that ever changes.)
    if (above == 0) continue;
    const double ccdf =
        static_cast<double>(above) / static_cast<double>(sorted.size());
    xs.push_back(t);
    ys.push_back(std::log(ccdf));
  }
  fit.tail_points = xs.size();
  if (xs.size() < 3) {
    fit.r_squared = 1.0;  // too few points to falsify linearity
    return fit;
  }
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double cov = sxy - sx * sy / n;
  const double vx = sxx - sx * sx / n;
  const double vy = syy - sy * sy / n;
  // Degenerate tails: vy == 0 means every sampled CCDF value was equal
  // (typically 1.0 — a point mass or near-point-mass whose decay hides
  // beyond the grid). The old code reported R² = 1 ("perfectly
  // exponential") for such data; report 0 instead — there is no observed
  // tail decay to support an exponential claim. vx == 0 can only happen
  // when the abscissae collapse (denormal maxv); same verdict.
  fit.r_squared = (vx > 0 && vy > 0) ? (cov * cov) / (vx * vy) : 0.0;
  return fit;
}

}  // namespace dtn
