#include "src/util/rng.hpp"

namespace dtn {

void Xoshiro256StarStar::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::array<std::uint64_t, 4> s{};
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        for (int i = 0; i < 4; ++i) s[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
      }
      (*this)();
    }
  }
  state_ = s;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DTN_REQUIRE(lo <= hi, "uniform_int: empty range");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(gen_());
  }
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0} / span) * span;
  std::uint64_t draw;
  do {
    draw = gen_();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; uses two uniforms per call, discards the second variate so
  // the stream position is call-count deterministic.
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * 3.14159265358979323846 * u2);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  DTN_REQUIRE(!weights.empty(), "weighted_index: no weights");
  double total = 0.0;
  for (double w : weights) {
    DTN_REQUIRE(w >= 0.0, "weighted_index: negative weight");
    total += w;
  }
  DTN_REQUIRE(total > 0.0, "weighted_index: all weights zero");
  double x = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t tag) {
  // Mix the tag through SplitMix so fork(0), fork(1) are decorrelated.
  SplitMix64 sm(next_u64() ^ (tag * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL));
  return Rng(sm.next());
}

}  // namespace dtn
