// Minimal POSIX subprocess + pipe helpers for the sweep orchestrator:
// fork/exec a worker with its stdin/stdout attached to pipes, feed it
// command lines, and read back newline-delimited event lines without
// blocking the coordinator's poll loop.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dtn {

/// A child process with piped stdin/stdout (stderr is inherited so worker
/// diagnostics land in the coordinator's stderr). Move-only; the
/// destructor closes the pipes but does not kill or reap the child —
/// callers own the lifecycle via kill()/wait().
class ChildProcess {
 public:
  ChildProcess() = default;
  ~ChildProcess();
  ChildProcess(ChildProcess&& other) noexcept;
  ChildProcess& operator=(ChildProcess&& other) noexcept;
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;

  /// fork/execs `argv` (argv[0] is the binary path). Throws
  /// PreconditionError when the pipes or fork fail; exec failure
  /// terminates the child, which the caller observes as EOF + nonzero
  /// exit status.
  static ChildProcess spawn(const std::vector<std::string>& argv);

  bool running() const { return pid_ > 0; }
  int pid() const { return pid_; }
  /// Read end of the child's stdout (valid while running).
  int stdout_fd() const { return stdout_fd_; }

  /// Writes `line` plus '\n' to the child's stdin. Returns false when the
  /// pipe is broken (child died); never raises SIGPIPE.
  bool write_line(const std::string& line);

  /// Closes the child's stdin (EOF tells a well-behaved worker to exit).
  void close_stdin();

  /// Sends a signal (e.g. SIGKILL for chaos testing). No-op when not
  /// running.
  void kill(int sig);

  /// Non-blocking reap. Returns true when the child has exited (pid()
  /// becomes invalid afterwards); fills `*exit_code` with the exit status
  /// or -signal for abnormal termination.
  bool try_wait(int* exit_code);

  /// Blocking reap; returns the exit status (or -signal).
  int wait();

 private:
  void close_fds();

  int pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
};

/// Incremental splitter for newline-delimited protocol streams: feed it
/// raw chunks as they arrive, it hands back complete lines (without the
/// terminator) in arrival order.
class LineBuffer {
 public:
  /// Appends a chunk; returns every line completed by it.
  std::vector<std::string> feed(const char* data, std::size_t n);

  /// Unterminated tail (useful for diagnostics on EOF).
  const std::string& partial() const { return partial_; }

 private:
  std::string partial_;
};

/// Reads whatever is currently available from `fd` into `buf` (up to
/// `cap`). Returns the byte count, 0 on EOF, and -1 when the read would
/// block or was interrupted.
int read_available(int fd, char* buf, std::size_t cap);

}  // namespace dtn
