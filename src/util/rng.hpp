// Deterministic random number generation for reproducible simulations.
//
// We deliberately avoid std::uniform_real_distribution and friends: their
// output is implementation-defined, which would make experiment results
// differ across standard libraries. All sampling here is done with explicit
// inverse-CDF / rejection forms over a portable xoshiro256** core, so a
// given seed produces identical traces everywhere.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/util/error.hpp"

namespace dtn {

/// SplitMix64: tiny generator used to expand a single 64-bit seed into the
/// 256-bit xoshiro state (recommended by the xoshiro authors).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed = 0x6A09E667F3BCC908ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Jump function: advances the stream by 2^128 draws. Used to derive
  /// statistically independent sub-streams from one seed.
  void jump();

  /// Raw 256-bit stream state, for snapshot/restore. set_state with a
  /// previously exported state resumes the exact draw sequence.
  std::array<std::uint64_t, 4> state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& s) { state_ = s; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Rng: the sampling front-end every simulator component owns.
///
/// All distributions are seed-stable: same seed, same draw sequence, on any
/// conforming compiler.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : gen_(seed) {}

  /// Uniform double in [0, 1).
  double uniform01() {
    // 53 random mantissa bits -> uniform in [0,1).
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) {
    DTN_REQUIRE(lo <= hi, "uniform: empty range");
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with rate lambda (mean 1/lambda), via inverse CDF.
  double exponential(double lambda) {
    DTN_REQUIRE(lambda > 0.0, "exponential: rate must be positive");
    // 1 - u in (0,1] so log() never sees zero.
    return -std::log(1.0 - uniform01()) / lambda;
  }

  /// Pareto (Lomax-shifted classic form): xm * (1-u)^(-1/alpha), x >= xm.
  double pareto(double xm, double alpha) {
    DTN_REQUIRE(xm > 0.0 && alpha > 0.0, "pareto: bad parameters");
    return xm * std::pow(1.0 - uniform01(), -1.0 / alpha);
  }

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// True with probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child stream; `tag` separates consumers.
  Rng fork(std::uint64_t tag);

  /// Raw 64-bit draw (exposed for hashing-style consumers).
  std::uint64_t next_u64() { return gen_(); }

  /// Stream-state export/import (checkpoint/restore). The state fully
  /// determines all future draws: restore + regenerate reproduces the
  /// original sequence bit-for-bit.
  std::array<std::uint64_t, 4> state() const { return gen_.state(); }
  void set_state(const std::array<std::uint64_t, 4>& s) { gen_.set_state(s); }

 private:
  Xoshiro256StarStar gen_;
};

}  // namespace dtn
