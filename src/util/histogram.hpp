// Histogram + distribution fitting for the intermeeting-time analysis
// (paper Fig. 3: intermeeting times tail off exponentially under both
// random-waypoint and the taxi trace).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dtn {

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples are
/// counted in underflow/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_width() const { return width_; }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

  /// Midpoint of a bin.
  double bin_center(std::size_t bin) const;

  /// Empirical PDF value of a bin (count / (total * width)).
  double density(std::size_t bin) const;

  /// Empirical complementary CDF evaluated at each bin's *left* edge,
  /// i.e. P(X >= edge). Useful for log-linear exponentiality checks.
  std::vector<double> ccdf() const;

  /// Bulk-add primitives (exact integer count adds, so any merge order or
  /// sharding reproduces identical state — the property the sweep
  /// orchestrator's aggregate files rely on). Also the restore path for
  /// serialized histograms.
  void add_count(std::size_t bin, std::size_t count);
  void add_underflow(std::size_t count);
  void add_overflow(std::size_t count);

  /// Merges a histogram with identical binning (throws otherwise).
  void merge(const Histogram& other);

  /// Quantile estimate from the binned counts (q in [0,1]): linear
  /// interpolation inside the covering bin; underflow mass sits at lo,
  /// overflow mass at hi. Returns lo for an empty histogram.
  ///
  /// NOTE: when the overflow mass covers the requested rank the true
  /// quantile is somewhere *above* hi and the returned hi is only a lower
  /// bound — use quantile_checked() wherever that silent saturation
  /// matters (sweep latency aggregates: a fixed [0, 12 h) layout quietly
  /// reported "12 h" p95s for heavier-tailed runs).
  double quantile(double q) const;

  /// Quantile with an explicit saturation verdict: `saturated` is true
  /// iff the rank falls into the overflow mass, i.e. `value` (== hi) is
  /// a lower bound rather than an estimate.
  struct QuantileEstimate {
    double value = 0.0;
    bool saturated = false;
  };
  QuantileEstimate quantile_checked(double q) const;

  /// Fraction of total mass that landed at/above hi (0 for empty).
  double overflow_fraction() const;
  /// Fraction of total mass that landed below lo (0 for empty).
  double underflow_fraction() const;

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0, underflow_ = 0, overflow_ = 0;
};

/// Result of fitting an exponential distribution to samples.
struct ExponentialFit {
  double lambda = 0.0;    ///< MLE rate = 1 / sample mean.
  double mean = 0.0;      ///< Sample mean E(I).
  double r_squared = 0.0; ///< R^2 of the least-squares line through
                          ///< log CCDF(t) vs t (1.0 = perfectly exponential;
                          ///< 0.0 when the sampled CCDF never decays, i.e.
                          ///< the grid saw no tail evidence at all).
  std::size_t samples = 0;
  /// CCDF grid points that actually entered the regression (non-empty
  /// tail). Fewer than 3 means r_squared could not be falsified.
  std::size_t tail_points = 0;
};

/// Fits an exponential to positive samples: MLE rate plus a goodness-of-fit
/// R^2 computed on the log-CCDF (which is linear iff the tail is
/// exponential — exactly the check the paper's Fig. 3 makes visually).
ExponentialFit fit_exponential(const std::vector<double>& samples,
                               std::size_t ccdf_points = 50);

}  // namespace dtn
