#include "src/fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "src/snapshot/archive.hpp"
#include "src/util/error.hpp"

namespace dtn {

namespace {

bool event_after(const FaultPlan::Event& a, const FaultPlan::Event& b) {
  // std::push_heap et al. expect "less", so order *after*; ties break on
  // the full key for determinism (kind before node: a down always
  // precedes an up scheduled for the same instant).
  return std::tie(a.at, a.kind, a.node) > std::tie(b.at, b.kind, b.node);
}

}  // namespace

void FaultConfig::validate() const {
  DTN_REQUIRE(churn_fraction >= 0.0 && churn_fraction <= 1.0,
              "Fault.churnFraction must be in [0, 1]");
  DTN_REQUIRE(mean_up_s > 0.0, "Fault.meanUpS must be positive");
  DTN_REQUIRE(mean_down_s > 0.0, "Fault.meanDownS must be positive");
  DTN_REQUIRE(link_abort_rate_per_hour >= 0.0,
              "Fault.linkAbortRatePerHour must be non-negative");
  DTN_REQUIRE(degrade_rate_per_hour >= 0.0,
              "Fault.degradeRatePerHour must be non-negative");
  DTN_REQUIRE(degrade_duration_s > 0.0,
              "Fault.degradeDurationS must be positive");
  DTN_REQUIRE(degrade_range_factor > 0.0 && degrade_range_factor <= 1.0,
              "Fault.degradeRangeFactor must be in (0, 1]");
  DTN_REQUIRE(degrade_bitrate_factor > 0.0 && degrade_bitrate_factor <= 1.0,
              "Fault.degradeBitrateFactor must be in (0, 1]");
}

FaultPlan::FaultPlan(const FaultConfig& cfg, std::size_t n_nodes,
                     std::uint64_t seed)
    : cfg_(cfg),
      rng_(seed),
      up_(n_nodes, 1),
      degraded_(n_nodes, 0),
      down_since_(n_nodes, 0.0) {
  cfg_.validate();
  DTN_REQUIRE(n_nodes > 0, "FaultPlan: need at least one node");
  schedule_initial();
}

double FaultPlan::holding(double mean_s) {
  return rng_.exponential(1.0 / mean_s);
}

void FaultPlan::push(SimTime at, Kind kind, NodeId node) {
  heap_.push_back(Event{at, kind, node, 0.0});
  std::push_heap(heap_.begin(), heap_.end(), &event_after);
}

void FaultPlan::schedule_initial() {
  const auto n = static_cast<NodeId>(up_.size());
  // Fixed draw order: churn participation + first down per node, then
  // first degradation window per node, then the first global link abort.
  if (cfg_.churn_fraction > 0.0) {
    for (NodeId i = 0; i < n; ++i) {
      if (rng_.bernoulli(cfg_.churn_fraction)) {
        push(holding(cfg_.mean_up_s), Kind::kNodeDown, i);
      }
    }
  }
  if (cfg_.degrade_rate_per_hour > 0.0) {
    const double mean = 3600.0 / cfg_.degrade_rate_per_hour;
    for (NodeId i = 0; i < n; ++i) {
      push(holding(mean), Kind::kDegradeStart, i);
    }
  }
  if (cfg_.link_abort_rate_per_hour > 0.0) {
    push(holding(3600.0 / cfg_.link_abort_rate_per_hour), Kind::kLinkAbort,
         kNoNode);
  }
}

bool FaultPlan::pop_due(SimTime now, Event* out) {
  if (heap_.empty() || heap_.front().at > now) return false;
  std::pop_heap(heap_.begin(), heap_.end(), &event_after);
  Event e = heap_.back();
  heap_.pop_back();
  switch (e.kind) {
    case Kind::kNodeDown:
      DTN_REQUIRE(up_[e.node], "fault: down event for a down node");
      up_[e.node] = 0;
      ++down_count_;
      down_since_[e.node] = e.at;
      push(e.at + holding(cfg_.mean_down_s), Kind::kNodeUp, e.node);
      break;
    case Kind::kNodeUp:
      DTN_REQUIRE(!up_[e.node], "fault: up event for an up node");
      up_[e.node] = 1;
      --down_count_;
      e.down_duration = e.at - down_since_[e.node];
      push(e.at + holding(cfg_.mean_up_s), Kind::kNodeDown, e.node);
      break;
    case Kind::kLinkAbort:
      push(e.at + holding(3600.0 / cfg_.link_abort_rate_per_hour),
           Kind::kLinkAbort, kNoNode);
      break;
    case Kind::kDegradeStart:
      DTN_REQUIRE(!degraded_[e.node], "fault: degrade start while degraded");
      degraded_[e.node] = 1;
      ++degraded_count_;
      // Windows never overlap per node: the next arrival is drawn when
      // this window closes.
      push(e.at + cfg_.degrade_duration_s, Kind::kDegradeEnd, e.node);
      break;
    case Kind::kDegradeEnd:
      DTN_REQUIRE(degraded_[e.node], "fault: degrade end while healthy");
      degraded_[e.node] = 0;
      --degraded_count_;
      push(e.at + holding(3600.0 / cfg_.degrade_rate_per_hour),
           Kind::kDegradeStart, e.node);
      break;
  }
  *out = e;
  return true;
}

std::size_t FaultPlan::pick_index(std::size_t n) {
  DTN_REQUIRE(n > 0, "fault: pick_index over empty set");
  return static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

void FaultPlan::save_state(snapshot::ArchiveWriter& out) const {
  out.begin_section("fault-plan");
  snapshot::write_rng(out, rng_);
  out.u64(up_.size());
  for (std::size_t i = 0; i < up_.size(); ++i) {
    out.boolean(up_[i] != 0);
    out.boolean(degraded_[i] != 0);
    out.f64(down_since_[i]);
  }
  // Canonical order: the heap layout depends on push history, the sorted
  // event list only on the pending schedule.
  std::vector<Event> events = heap_;
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return event_after(b, a); });
  out.u64(events.size());
  for (const Event& e : events) {
    out.f64(e.at);
    out.u8(static_cast<std::uint8_t>(e.kind));
    out.u32(e.node);
  }
  out.end_section();
}

void FaultPlan::load_state(snapshot::ArchiveReader& in) {
  in.begin_section("fault-plan");
  snapshot::read_rng(in, rng_);
  const std::uint64_t n = in.u64();
  DTN_REQUIRE(n == up_.size(),
              "fault-plan: snapshot node count does not match this plan");
  down_count_ = 0;
  degraded_count_ = 0;
  for (std::size_t i = 0; i < up_.size(); ++i) {
    up_[i] = in.boolean() ? 1 : 0;
    degraded_[i] = in.boolean() ? 1 : 0;
    down_since_[i] = in.f64();
    if (!up_[i]) ++down_count_;
    if (degraded_[i]) ++degraded_count_;
  }
  heap_.clear();
  const std::uint64_t ne = in.u64();
  heap_.reserve(ne);
  for (std::uint64_t i = 0; i < ne; ++i) {
    Event e;
    e.at = in.f64();
    const std::uint8_t kind = in.u8();
    DTN_REQUIRE(kind <= static_cast<std::uint8_t>(Kind::kDegradeEnd),
                "fault-plan: unknown event kind in snapshot");
    e.kind = static_cast<Kind>(kind);
    e.node = in.u32();
    heap_.push_back(e);
  }
  std::make_heap(heap_.begin(), heap_.end(), &event_after);
  in.end_section();
}

}  // namespace dtn
