// Fault injection: deterministic, seeded node churn, mid-transfer link
// aborts and per-node radio degradation.
//
// The paper evaluates SDSRP under ideal radios and always-on nodes; the
// DTN deployments that motivate buffer management (disaster relief,
// rural connectivity) are exactly the ones with failing nodes. A
// FaultPlan compiles a scenario's `Fault.*` keys into a schedule of
// discrete fault events:
//   * node churn — each participating node alternates exponentially
//     distributed up/down intervals; while down its radio is off (no
//     contacts, no transfers, no traffic sourced) and, optionally, its
//     buffer is purged when it reboots;
//   * link aborts — a global Poisson process of interference events,
//     each killing one uniformly chosen in-flight transfer;
//   * radio degradation — per-node Poisson windows during which the
//     node's effective range and/or bitrate are scaled down.
//
// Determinism: the plan owns a dedicated RNG stream (forked from the
// scenario seed, tag 0xFA00FA) and draws from it only inside `pop_due`, whose
// pop order is fixed by the total (at, kind, node) event key — so a run
// with faults is exactly as reproducible as one without, the stream is
// isolated from mobility/traffic randomness (toggling faults does not
// perturb them), and checkpointing the stream plus the pending event
// heap (archive v4) makes a restore mid-outage replay bit-identically.
//
// The plan is pure bookkeeping: it flips its own availability flags and
// schedules successor events; every side effect on the simulation
// (tearing links, aborting transfers, purging buffers, stats) is applied
// by the World, which drains `pop_due` once per step in both the
// event-driven and legacy step loops — parity between the two modes is
// structural, not re-proven per feature.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/types.hpp"
#include "src/util/rng.hpp"

namespace dtn {

namespace snapshot {
class ArchiveWriter;
class ArchiveReader;
}  // namespace snapshot

/// Scenario-level fault model knobs (`Fault.*` settings keys). All rates
/// are per hour; all durations/means in seconds. Defaults describe a
/// fault-free world, so `FaultConfig{}` is valid and inert.
struct FaultConfig {
  bool enabled = false;
  /// Fraction of nodes subject to churn (Bernoulli per node, drawn from
  /// the fault stream in node-id order at compile time).
  double churn_fraction = 0.0;
  double mean_up_s = 3600.0;    ///< exponential mean up-time
  double mean_down_s = 300.0;   ///< exponential mean down-time
  /// Reboot semantics: true = the buffer is lost when a node comes back
  /// up (cold storage), false = contents survive the outage (disk).
  bool reboot_purge = false;
  /// Global Poisson rate of interference events, each aborting one
  /// uniformly chosen in-flight transfer (no-op when none are active).
  double link_abort_rate_per_hour = 0.0;
  /// Per-node Poisson arrival rate of degradation windows.
  double degrade_rate_per_hour = 0.0;
  double degrade_duration_s = 600.0;
  /// Scale factors applied to the node's radio while degraded, in (0,1].
  double degrade_range_factor = 1.0;
  double degrade_bitrate_factor = 1.0;

  /// True when any fault mechanism can ever fire.
  bool any_active() const {
    return enabled &&
           (churn_fraction > 0.0 || link_abort_rate_per_hour > 0.0 ||
            degrade_rate_per_hour > 0.0);
  }

  /// Throws PreconditionError on out-of-range values.
  void validate() const;
};

class FaultPlan {
 public:
  enum class Kind : std::uint8_t {
    kNodeDown = 0,
    kNodeUp = 1,
    kLinkAbort = 2,
    kDegradeStart = 3,
    kDegradeEnd = 4,
  };

  /// One fault occurrence, handed to the World for side effects.
  struct Event {
    SimTime at = 0.0;
    Kind kind = Kind::kNodeDown;
    NodeId node = kNoNode;       ///< kNoNode for kLinkAbort
    double down_duration = 0.0;  ///< kNodeUp only: at - down time
  };

  /// Compiles the initial schedule; draws from the fault stream in a
  /// fixed order (churn participation per node, then first arrivals).
  FaultPlan(const FaultConfig& cfg, std::size_t n_nodes, std::uint64_t seed);

  const FaultConfig& config() const { return cfg_; }
  std::size_t node_count() const { return up_.size(); }

  bool is_up(NodeId id) const { return up_[id]; }
  bool is_degraded(NodeId id) const { return degraded_[id]; }
  double range_factor(NodeId id) const {
    return degraded_[id] ? cfg_.degrade_range_factor : 1.0;
  }
  double bitrate_factor(NodeId id) const {
    return degraded_[id] ? cfg_.degrade_bitrate_factor : 1.0;
  }
  std::size_t down_count() const { return down_count_; }
  std::size_t degraded_count() const { return degraded_count_; }

  /// Pops the next event due at or before `now`, applies its *internal*
  /// state transition (availability flags, successor scheduling, RNG
  /// draws) and returns true with `*out` filled; returns false when no
  /// event is due. The caller applies all simulation side effects.
  bool pop_due(SimTime now, Event* out);

  /// Uniform pick among `n` in-flight transfers (kLinkAbort side effect;
  /// kept here so the draw comes from the fault stream).
  std::size_t pick_index(std::size_t n);

  /// Snapshot/restore of the complete plan state: RNG stream,
  /// availability/degradation flags, outage start times and the pending
  /// event heap (serialized sorted on the total event key, so the bytes
  /// — and digests — are canonical regardless of heap layout).
  void save_state(snapshot::ArchiveWriter& out) const;
  void load_state(snapshot::ArchiveReader& in);

 private:
  void push(SimTime at, Kind kind, NodeId node);
  void schedule_initial();
  /// Exponential holding time with the given mean (guarded: mean > 0).
  double holding(double mean_s);

  FaultConfig cfg_;
  Rng rng_;
  std::vector<Event> heap_;  ///< min-heap on (at, kind, node)
  std::vector<std::uint8_t> up_;        ///< availability flag per node
  std::vector<std::uint8_t> degraded_;  ///< degradation flag per node
  std::vector<double> down_since_;      ///< outage start (valid while down)
  std::size_t down_count_ = 0;
  std::size_t degraded_count_ = 0;
};

}  // namespace dtn
