#include "src/snapshot/archive.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "src/util/error.hpp"

namespace dtn::snapshot {

void ArchiveWriter::raw(const void* p, std::size_t n) {
  hash_.update(p, n);
  written_ += n;
  if (mode_ == Mode::kBuffer) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
}

void ArchiveWriter::tag(Tag t) {
  const auto b = static_cast<std::uint8_t>(t);
  raw(&b, 1);
}

void ArchiveWriter::le64(std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  raw(b, 8);
}

void ArchiveWriter::u8(std::uint8_t v) {
  tag(Tag::kU8);
  raw(&v, 1);
}

void ArchiveWriter::u32(std::uint32_t v) {
  tag(Tag::kU32);
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  raw(b, 4);
}

void ArchiveWriter::u64(std::uint64_t v) {
  tag(Tag::kU64);
  le64(v);
}

void ArchiveWriter::i64(std::int64_t v) {
  tag(Tag::kI64);
  le64(static_cast<std::uint64_t>(v));
}

void ArchiveWriter::f64(double v) {
  tag(Tag::kF64);
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  le64(bits);
}

void ArchiveWriter::boolean(bool v) {
  tag(Tag::kBool);
  const std::uint8_t b = v ? 1 : 0;
  raw(&b, 1);
}

void ArchiveWriter::str(const std::string& v) {
  tag(Tag::kString);
  le64(v.size());
  raw(v.data(), v.size());
}

void ArchiveWriter::begin_section(const std::string& name) {
  tag(Tag::kSectionBegin);
  le64(name.size());
  raw(name.data(), name.size());
  ++depth_;
}

void ArchiveWriter::end_section() {
  DTN_REQUIRE(depth_ > 0, "archive: end_section without matching begin");
  tag(Tag::kSectionEnd);
  --depth_;
}

const std::vector<std::uint8_t>& ArchiveWriter::bytes() const {
  DTN_REQUIRE(mode_ == Mode::kBuffer, "archive: digest-only writer has no bytes");
  DTN_REQUIRE(depth_ == 0, "archive: unbalanced sections");
  return buf_;
}

void ArchiveReader::raw(void* p, std::size_t n) {
  DTN_REQUIRE(n <= buf_.size() - pos_, "archive: read past end (truncated?)");
  std::memcpy(p, buf_.data() + pos_, n);
  pos_ += n;
}

void ArchiveReader::expect(Tag t) {
  std::uint8_t b = 0;
  raw(&b, 1);
  DTN_REQUIRE(b == static_cast<std::uint8_t>(t),
              "archive: type tag mismatch (corrupt or out-of-sync stream)");
}

std::uint64_t ArchiveReader::le64() {
  std::uint8_t b[8];
  raw(b, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

std::uint8_t ArchiveReader::u8() {
  expect(Tag::kU8);
  std::uint8_t v = 0;
  raw(&v, 1);
  return v;
}

std::uint32_t ArchiveReader::u32() {
  expect(Tag::kU32);
  std::uint8_t b[4];
  raw(b, 4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t ArchiveReader::u64() {
  expect(Tag::kU64);
  return le64();
}

std::int64_t ArchiveReader::i64() {
  expect(Tag::kI64);
  return static_cast<std::int64_t>(le64());
}

double ArchiveReader::f64() {
  expect(Tag::kF64);
  const std::uint64_t bits = le64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

bool ArchiveReader::boolean() {
  expect(Tag::kBool);
  std::uint8_t b = 0;
  raw(&b, 1);
  DTN_REQUIRE(b <= 1, "archive: malformed bool");
  return b != 0;
}

std::string ArchiveReader::str() {
  expect(Tag::kString);
  const std::uint64_t n = le64();
  DTN_REQUIRE(n <= remaining(), "archive: string length past end");
  std::string v(n, '\0');
  raw(v.data(), n);
  return v;
}

void ArchiveReader::begin_section(const std::string& name) {
  expect(Tag::kSectionBegin);
  const std::uint64_t n = le64();
  DTN_REQUIRE(n <= remaining(), "archive: section name past end");
  std::string got(n, '\0');
  raw(got.data(), n);
  DTN_REQUIRE(got == name, "archive: expected section '" + name +
                               "', found '" + got + "'");
  ++depth_;
}

void ArchiveReader::end_section() {
  DTN_REQUIRE(depth_ > 0, "archive: end_section without matching begin");
  expect(Tag::kSectionEnd);
  --depth_;
}

namespace {

void append_le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_le64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t take_le32(const std::vector<std::uint8_t>& in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[at + static_cast<std::size_t>(i)]) << (8 * i);
  return v;
}

std::uint64_t take_le64(const std::vector<std::uint8_t>& in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[at + static_cast<std::size_t>(i)]) << (8 * i);
  return v;
}

}  // namespace

void write_archive_file(const std::string& path, const ArchiveWriter& w) {
  const std::vector<std::uint8_t>& payload = w.bytes();
  std::vector<std::uint8_t> framed;
  framed.reserve(payload.size() + 24);
  append_le32(framed, kArchiveMagic);
  append_le32(framed, kArchiveVersion);
  append_le64(framed, payload.size());
  framed.insert(framed.end(), payload.begin(), payload.end());
  Fnv1a h;
  h.update(payload.data(), payload.size());
  append_le64(framed, h.digest());

  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    DTN_REQUIRE(os.good(), "archive: cannot open for writing: " + tmp);
    os.write(reinterpret_cast<const char*>(framed.data()),
             static_cast<std::streamsize>(framed.size()));
    DTN_REQUIRE(os.good(), "archive: write failed: " + tmp);
  }
  DTN_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
              "archive: rename failed: " + path);
}

ArchiveReader read_archive_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DTN_REQUIRE(is.good(), "archive: cannot open: " + path);
  std::vector<std::uint8_t> framed((std::istreambuf_iterator<char>(is)),
                                   std::istreambuf_iterator<char>());
  DTN_REQUIRE(framed.size() >= 24, "archive: file too short: " + path);
  DTN_REQUIRE(take_le32(framed, 0) == kArchiveMagic,
              "archive: bad magic (not a snapshot file): " + path);
  const std::uint32_t version = take_le32(framed, 4);
  DTN_REQUIRE(version >= kArchiveMinVersion && version <= kArchiveVersion,
              "archive: unsupported version " + std::to_string(version) +
                  " (supported: " + std::to_string(kArchiveMinVersion) +
                  ".." + std::to_string(kArchiveVersion) + ")");
  const std::uint64_t n = take_le64(framed, 8);
  DTN_REQUIRE(framed.size() == 24 + n,
              "archive: payload length mismatch (truncated?): " + path);
  Fnv1a h;
  h.update(framed.data() + 16, n);
  const std::uint64_t stored = take_le64(framed, 16 + n);
  DTN_REQUIRE(h.digest() == stored, "archive: digest mismatch (corrupt): " + path);
  return ArchiveReader(
      std::vector<std::uint8_t>(
          framed.begin() + 16,
          framed.begin() + 16 + static_cast<std::ptrdiff_t>(n)),
      version);
}

void write_running_stats(ArchiveWriter& w, const RunningStats& s) {
  const RunningStats::State st = s.export_state();
  w.u64(st.n);
  w.f64(st.mean);
  w.f64(st.m2);
  w.f64(st.min);
  w.f64(st.max);
}

void read_running_stats(ArchiveReader& r, RunningStats& s) {
  RunningStats::State st;
  st.n = r.u64();
  st.mean = r.f64();
  st.m2 = r.f64();
  st.min = r.f64();
  st.max = r.f64();
  s.import_state(st);
}

void write_rng(ArchiveWriter& w, const Rng& rng) {
  for (std::uint64_t word : rng.state()) w.u64(word);
}

void read_rng(ArchiveReader& r, Rng& rng) {
  std::array<std::uint64_t, 4> s{};
  for (auto& word : s) word = r.u64();
  rng.set_state(s);
}

}  // namespace dtn::snapshot
