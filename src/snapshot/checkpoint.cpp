#include "src/snapshot/checkpoint.hpp"

#include "src/util/error.hpp"

namespace dtn::snapshot {

void save_world(ArchiveWriter& out, const Scenario& sc, const World& world,
                const ExtraWriter& extra) {
  out.begin_section("checkpoint");
  out.str(sc.to_settings().to_text());
  world.save_state(out);
  out.boolean(static_cast<bool>(extra));
  if (extra) {
    out.begin_section("extra");
    extra(out);
    out.end_section();
  }
  out.end_section();
}

RestoredWorld restore_world(ArchiveReader& in, const ExtraReader& extra) {
  in.begin_section("checkpoint");
  RestoredWorld r;
  r.scenario = Scenario::from_settings(Settings::parse(in.str()));
  r.world = build_world(r.scenario);
  r.world->load_state(in);
  const bool has_extra = in.boolean();
  DTN_REQUIRE(has_extra == static_cast<bool>(extra),
              "checkpoint: extra payload presence does not match reader");
  if (has_extra) {
    in.begin_section("extra");
    extra(in);
    in.end_section();
  }
  in.end_section();
  return r;
}

Scenario restore_world_into(ArchiveReader& in, World& world,
                            const ExtraReader& extra) {
  in.begin_section("checkpoint");
  const Scenario sc = Scenario::from_settings(Settings::parse(in.str()));
  DTN_REQUIRE(sc.n_nodes == world.node_count(),
              "checkpoint: scenario does not match the target world");
  world.load_state(in);
  const bool has_extra = in.boolean();
  DTN_REQUIRE(has_extra == static_cast<bool>(extra),
              "checkpoint: extra payload presence does not match reader");
  if (has_extra) {
    in.begin_section("extra");
    extra(in);
    in.end_section();
  }
  in.end_section();
  return sc;
}

void save_checkpoint(const std::string& path, const Scenario& sc,
                     const World& world, const ExtraWriter& extra) {
  ArchiveWriter w(ArchiveWriter::Mode::kBuffer);
  save_world(w, sc, world, extra);
  write_archive_file(path, w);
}

RestoredWorld restore_checkpoint(const std::string& path,
                                 const ExtraReader& extra) {
  ArchiveReader r = read_archive_file(path);
  return restore_world(r, extra);
}

std::uint64_t world_digest(const World& world) { return world.digest(); }

}  // namespace dtn::snapshot
