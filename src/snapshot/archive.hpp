// Versioned binary archive for simulation snapshots.
//
// The writer produces a canonical little-endian byte stream: every value
// is prefixed with a one-byte type tag, and logical groups are wrapped in
// named sections. The same stream feeds two consumers:
//   * checkpoint files (save/restore of a World mid-run), and
//   * the FNV-1a state digest (World::digest) — the writer hashes every
//     byte as it goes, so a digest-only pass never allocates the buffer.
// Canonical encoding is what makes digests comparable across runs,
// platforms and processes.
//
// The reader validates everything: type tags, section names, bounds, and
// (for files) the magic/version header and the trailing payload digest.
// Any mismatch throws PreconditionError (util/error.hpp) — a truncated or
// corrupted checkpoint is never silently accepted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/rng.hpp"
#include "src/util/stats.hpp"

namespace dtn::snapshot {

/// Archive file magic ("DTNS") and the current format version. Bump the
/// version on any layout change; readers reject archives whose version
/// they do not understand (no silent best-effort decoding).
inline constexpr std::uint32_t kArchiveMagic = 0x534E5444u;  // "DTNS" LE
// v6: element-framed pipeline policy state — CompositePolicy brackets
// each element's bytes with its name in a "pipeline-policy" section
// (src/pipeline/composite_policy.cpp). Only checkpoints of worlds built
// from a Pipeline.spec with a non-canonical element pair carry the
// section, but any v6 layout needs a version old readers refuse rather
// than misparse. (v5: message-arena sizing hints; v4: fault-injection
// state — FaultPlan plus the fault counters in SimStats; v3:
// event-driven core kinetic state; v2: priority cache.)
// Since v4, readers accept any older version: each load_state consults
// ArchiveReader::version() and skips sections the writer predates.
inline constexpr std::uint32_t kArchiveVersion = 6;
inline constexpr std::uint32_t kArchiveMinVersion = 1;

/// Streaming 64-bit FNV-1a.
class Fnv1a {
 public:
  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001B3ULL;
    }
  }
  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

/// One-byte type tags; every primitive write carries one so a reader that
/// drifts out of sync fails immediately instead of misinterpreting bytes.
enum class Tag : std::uint8_t {
  kU8 = 0x01,
  kU32 = 0x02,
  kU64 = 0x03,
  kI64 = 0x04,
  kF64 = 0x05,
  kBool = 0x06,
  kString = 0x07,
  kSectionBegin = 0x08,
  kSectionEnd = 0x09,
};

class ArchiveWriter {
 public:
  enum class Mode {
    kBuffer,      ///< accumulate bytes (checkpoints) and hash
    kDigestOnly,  ///< hash only — nothing is stored (World::digest)
  };

  explicit ArchiveWriter(Mode mode = Mode::kBuffer) : mode_(mode) {}

  /// True in digest mode. Derived-but-deterministic state (memo caches)
  /// is written only to buffered archives, so digests compare the
  /// semantic state alone.
  bool digest_only() const { return mode_ == Mode::kDigestOnly; }

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v);
  void str(const std::string& v);

  /// Named section bracket; sections must nest and balance.
  void begin_section(const std::string& name);
  void end_section();

  /// Serialized payload (buffer mode only; sections must be balanced).
  const std::vector<std::uint8_t>& bytes() const;
  /// FNV-1a over every byte written so far (both modes).
  std::uint64_t digest() const { return hash_.digest(); }
  std::size_t bytes_written() const { return written_; }

 private:
  void raw(const void* p, std::size_t n);
  void tag(Tag t);
  void le64(std::uint64_t v);

  Mode mode_;
  Fnv1a hash_;
  std::vector<std::uint8_t> buf_;
  std::size_t written_ = 0;
  int depth_ = 0;
};

class ArchiveReader {
 public:
  /// `version` is the format version the bytes were written under; it
  /// defaults to current for in-memory round trips (writer and reader in
  /// the same process). read_archive_file stamps the file header version.
  explicit ArchiveReader(std::vector<std::uint8_t> bytes,
                         std::uint32_t version = kArchiveVersion)
      : buf_(std::move(bytes)), version_(version) {}

  /// Format version of the stream; load_state implementations gate
  /// sections introduced after it.
  std::uint32_t version() const { return version_; }

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  bool boolean();
  std::string str();

  /// Consumes a section begin marker and checks the recorded name.
  void begin_section(const std::string& name);
  void end_section();

  bool at_end() const { return pos_ == buf_.size(); }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  void raw(void* p, std::size_t n);
  void expect(Tag t);
  std::uint64_t le64();

  std::vector<std::uint8_t> buf_;
  std::uint32_t version_ = kArchiveVersion;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

/// Writes the archive as a framed file: magic, version, payload length,
/// payload, FNV-1a digest trailer. The write goes through a temporary
/// file + rename so a crash mid-write never leaves a half checkpoint at
/// `path`. The writer must be in buffer mode with balanced sections.
void write_archive_file(const std::string& path, const ArchiveWriter& w);

/// Reads and validates a framed archive file (magic, version, length,
/// digest). Throws PreconditionError on any corruption.
ArchiveReader read_archive_file(const std::string& path);

// --- shared composite helpers ---

void write_running_stats(ArchiveWriter& w, const RunningStats& s);
void read_running_stats(ArchiveReader& r, RunningStats& s);

void write_rng(ArchiveWriter& w, const Rng& rng);
void read_rng(ArchiveReader& r, Rng& rng);

}  // namespace dtn::snapshot
