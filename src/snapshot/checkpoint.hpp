// Checkpoint/restore of a running simulation.
//
// A checkpoint file is a framed archive (archive.hpp) holding
//   * the scenario, embedded as Settings text — a checkpoint is
//     self-describing and can be restored without the original config;
//   * the World's complete dynamic state (World::save_state);
//   * an optional caller-defined "extra" payload (e.g. observer state a
//     harness needs to resume exactly — see run_scenario's delivered-rows).
//
// Restore rebuilds the structure (nodes, router, policy, capacities) from
// the embedded scenario via build_world, then overwrites the dynamic state
// — so a restored world is bit-for-bit the saved one: running it to the
// end yields the same digest and metrics as the uninterrupted run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/config/scenario.hpp"
#include "src/snapshot/archive.hpp"

namespace dtn::snapshot {

/// Hooks for harness-owned state that must survive a checkpoint together
/// with the world (observers are outside the World and not serialized by
/// World::save_state).
using ExtraWriter = std::function<void(ArchiveWriter&)>;
using ExtraReader = std::function<void(ArchiveReader&)>;

/// Serializes scenario + world (+ optional extra) into `out`.
void save_world(ArchiveWriter& out, const Scenario& sc, const World& world,
                const ExtraWriter& extra = {});

/// Reads a stream produced by save_world: rebuilds a fresh World from the
/// embedded scenario and loads the dynamic state into it.
struct RestoredWorld {
  Scenario scenario;
  std::unique_ptr<World> world;
};
RestoredWorld restore_world(ArchiveReader& in, const ExtraReader& extra = {});

/// Same stream, restored into an already-built world. `world` must be
/// structurally identical to the one the stream was saved from (same
/// scenario); returns the embedded scenario for verification by the caller.
Scenario restore_world_into(ArchiveReader& in, World& world,
                            const ExtraReader& extra = {});

/// Framed-file convenience wrappers (atomic write, validated read).
void save_checkpoint(const std::string& path, const Scenario& sc,
                     const World& world, const ExtraWriter& extra = {});
RestoredWorld restore_checkpoint(const std::string& path,
                                 const ExtraReader& extra = {});

/// Digest of the world's canonical state; equal digests mean (up to hash
/// collision) identical simulation states. Thin alias of World::digest()
/// for call sites that only include the snapshot layer.
std::uint64_t world_digest(const World& world);

}  // namespace dtn::snapshot
